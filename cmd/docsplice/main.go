// Command docsplice injects measured experiment tables into the
// commentary document. Measured blocks are delimited by marker pairs
//
//	<!-- TABLE:id -->
//	```
//	... rendered tables ...
//	```
//	<!-- /TABLE:id -->
//
// and splicing replaces everything between a pair with the experiment's
// tables from an expdriver text output, keeping the markers — so the
// operation is idempotent and re-splicing after a fresh campaign updates
// the document in place. A legacy bare `<!-- TABLE:id -->` marker (no
// end marker) expands into the bracketed form on first splice.
//
// Markers that do not match the results file — an id with no rendered
// section, or an end marker with no begin — are an error: docsplice
// lists every unmatched marker and exits non-zero without writing
// anything, instead of silently leaving stale prose in the document.
//
//	go run ./cmd/docsplice -doc EXPERIMENTS.md -results results/expdriver_full.txt
//	go run ./cmd/docsplice -doc EXPERIMENTS.md -results results/expdriver_full.txt -check
//
// -check verifies without writing: it exits non-zero if any measured
// block differs from the results file (CI runs this to keep
// EXPERIMENTS.md in sync with results/).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	doc := flag.String("doc", "EXPERIMENTS.md", "markdown with <!-- TABLE:id --> markers")
	res := flag.String("results", "results/expdriver_full.txt", "expdriver text output")
	out := flag.String("o", "", "output path (default: overwrite -doc)")
	check := flag.Bool("check", false, "verify the doc is up to date; write nothing")
	flag.Parse()
	if *out == "" {
		*out = *doc
	}

	docBytes, err := os.ReadFile(*doc)
	if err != nil {
		fatal(err)
	}
	resBytes, err := os.ReadFile(*res)
	if err != nil {
		fatal(err)
	}

	tables := parseResults(string(resBytes))
	text, changed, err := splice(string(docBytes), tables)
	if err != nil {
		fatal(err)
	}

	if *check {
		if len(changed) > 0 {
			fmt.Fprintf(os.Stderr, "docsplice: %s is stale (blocks differ from %s): %s\n",
				*doc, *res, strings.Join(changed, ", "))
			fmt.Fprintln(os.Stderr, "docsplice: re-run docsplice to update it")
			os.Exit(1)
		}
		fmt.Printf("docsplice: %s is up to date (%d measured blocks)\n", *doc, countBlocks(text))
		return
	}

	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("docsplice: wrote %s (%d experiments available, %d blocks updated)\n",
		*out, len(tables), len(changed))
}

// countBlocks counts the begin markers in a document (prose that merely
// mentions a marker mid-line does not count).
func countBlocks(text string) int {
	n := 0
	for _, line := range strings.Split(text, "\n") {
		if _, ok := beginID(line); ok {
			n++
		}
	}
	return n
}

// markerID extracts the id if line is exactly a begin or end marker
// (surrounding whitespace ignored).
func markerID(line, prefix string) (string, bool) {
	t := strings.TrimSpace(line)
	if !strings.HasPrefix(t, prefix) || !strings.HasSuffix(t, "-->") {
		return "", false
	}
	id := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(t, prefix), "-->"))
	if id == "" || strings.ContainsAny(id, " \t") {
		return "", false
	}
	return id, true
}

func beginID(line string) (string, bool) { return markerID(line, "<!-- TABLE:") }
func endID(line string) (string, bool)   { return markerID(line, "<!-- /TABLE:") }

// splice replaces every measured block in doc with the corresponding
// experiment body from tables, returning the new text and the ids of
// blocks whose content changed. Unmatched markers — a begin marker whose
// id has no section in tables, or an end marker with no begin — abort
// the splice with an error listing all of them.
func splice(doc string, tables map[string]string) (string, []string, error) {
	lines := strings.Split(doc, "\n")
	var out []string
	var changed, unmatched []string

	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if id, ok := endID(line); ok {
			unmatched = append(unmatched, fmt.Sprintf("<!-- /TABLE:%s --> without begin (line %d)", id, i+1))
			continue
		}
		id, ok := beginID(line)
		if !ok {
			out = append(out, line)
			continue
		}

		// Find the matching end marker; stop at the next begin marker so a
		// legacy bare marker does not swallow the following block.
		end := -1
		for j := i + 1; j < len(lines); j++ {
			if _, isBegin := beginID(lines[j]); isBegin {
				break
			}
			if eid, isEnd := endID(lines[j]); isEnd {
				if eid == id {
					end = j
				} else {
					unmatched = append(unmatched,
						fmt.Sprintf("<!-- /TABLE:%s --> closing <!-- TABLE:%s --> (line %d)", eid, id, j+1))
				}
				break
			}
		}

		body, have := tables[id]
		if !have {
			unmatched = append(unmatched, fmt.Sprintf("<!-- TABLE:%s --> has no section in the results file (line %d)", id, i+1))
			if end >= 0 {
				i = end
			}
			continue
		}

		block := []string{
			fmt.Sprintf("<!-- TABLE:%s -->", id),
			"```",
			strings.TrimRight(body, "\n"),
			"```",
			fmt.Sprintf("<!-- /TABLE:%s -->", id),
		}
		if end >= 0 {
			old := strings.Join(lines[i:end+1], "\n")
			if old != strings.Join(block, "\n") {
				changed = append(changed, id)
			}
			i = end
		} else {
			changed = append(changed, id) // legacy bare marker: always an expansion
		}
		out = append(out, block...)
	}

	if len(unmatched) > 0 {
		return "", nil, fmt.Errorf("unmatched markers:\n  %s", strings.Join(unmatched, "\n  "))
	}
	return strings.Join(out, "\n"), changed, nil
}

// parseResults splits an expdriver text dump into per-experiment bodies:
// each section starts with "### <id> (" and contains one or more
// rendered tables. A trailing "completed ..." summary line (legacy dumps
// captured it from stdout) terminates the last section.
func parseResults(s string) map[string]string {
	tables := make(map[string]string)
	lines := strings.Split(s, "\n")
	var id string
	var body []string
	flush := func() {
		if id != "" {
			tables[id] = strings.TrimSpace(strings.Join(body, "\n")) + "\n"
		}
		body = nil
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "### ") {
			flush()
			rest := strings.TrimPrefix(line, "### ")
			if i := strings.IndexByte(rest, ' '); i > 0 {
				id = rest[:i]
			} else {
				id = rest
			}
			continue
		}
		if strings.HasPrefix(line, "completed ") {
			flush()
			id = ""
			continue
		}
		if id != "" {
			body = append(body, line)
		}
	}
	flush()
	return tables
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "docsplice:", err)
	os.Exit(1)
}
