// Command docsplice injects measured experiment tables into the
// commentary document: every `<!-- TABLE:id -->` marker in the input
// markdown is replaced by the rendered tables of that experiment from an
// expdriver text output.
//
//	go run ./cmd/docsplice -doc EXPERIMENTS.md -results results/expdriver_full.txt -o EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	doc := flag.String("doc", "EXPERIMENTS.md", "markdown with <!-- TABLE:id --> markers")
	res := flag.String("results", "results/expdriver_full.txt", "expdriver text output")
	out := flag.String("o", "", "output path (default: overwrite -doc)")
	flag.Parse()
	if *out == "" {
		*out = *doc
	}

	docBytes, err := os.ReadFile(*doc)
	if err != nil {
		fatal(err)
	}
	resBytes, err := os.ReadFile(*res)
	if err != nil {
		fatal(err)
	}

	tables := parseResults(string(resBytes))
	text := string(docBytes)
	missing := 0
	for id, body := range tables {
		marker := fmt.Sprintf("<!-- TABLE:%s -->", id)
		if strings.Contains(text, marker) {
			text = strings.ReplaceAll(text, marker, "```\n"+strings.TrimRight(body, "\n")+"\n```")
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "<!-- TABLE:") {
			fmt.Fprintf(os.Stderr, "docsplice: unresolved marker: %s\n", strings.TrimSpace(line))
			missing++
		}
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("docsplice: wrote %s (%d experiments available, %d markers unresolved)\n",
		*out, len(tables), missing)
}

// parseResults splits an expdriver text dump into per-experiment bodies:
// each section starts with "### <id> (" and contains one or more
// rendered tables.
func parseResults(s string) map[string]string {
	tables := make(map[string]string)
	lines := strings.Split(s, "\n")
	var id string
	var body []string
	flush := func() {
		if id != "" {
			tables[id] = strings.TrimSpace(strings.Join(body, "\n")) + "\n"
		}
		body = nil
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "### ") {
			flush()
			rest := strings.TrimPrefix(line, "### ")
			if i := strings.IndexByte(rest, ' '); i > 0 {
				id = rest[:i]
			} else {
				id = rest
			}
			continue
		}
		if strings.HasPrefix(line, "completed ") {
			flush()
			id = ""
			continue
		}
		if id != "" {
			body = append(body, line)
		}
	}
	flush()
	return tables
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "docsplice:", err)
	os.Exit(1)
}
