// Command gengraph generates, inspects, and reorders the evaluation
// datasets as GMG1 binary files, so long experiment campaigns can reuse
// graphs instead of regenerating them.
//
// Usage:
//
//	gengraph gen -dataset kr25 -scale full -weighted -o kr25.gmg
//	gengraph info kr25.gmg
//	gengraph reorder -method dbg -o kr25-dbg.gmg kr25.gmg
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"graphmem/internal/cli"
	"graphmem/internal/gen"
	"graphmem/internal/graph"
	"graphmem/internal/reorder"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "reorder":
		err = cmdReorder(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gengraph gen -dataset <kr25|twit|web|wiki> [-scale full|bench|test] [-weighted] -o FILE
  gengraph info FILE
  gengraph reorder -method <dbg|sort|rand> -o OUT FILE`)
	os.Exit(2)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dataset := fs.String("dataset", "kr25", "dataset name")
	scale := fs.String("scale", "full", "scale: full, bench, test")
	weighted := fs.Bool("weighted", false, "generate edge weights (needed for SSSP)")
	out := fs.String("o", "", "output file")
	_ = fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	sc, err := cli.ParseScale(*scale)
	if err != nil {
		return err
	}
	ds, err := cli.ParseDataset(*dataset)
	if err != nil {
		return err
	}
	g := gen.Generate(ds, sc, *weighted)
	return writeGraph(*out, g)
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info: exactly one file expected")
	}
	g, err := readGraph(args[0])
	if err != nil {
		return err
	}
	in := g.InDegrees()
	sorted := append([]uint32(nil), in...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	pct := func(p float64) uint32 { return sorted[int(p*float64(len(sorted)-1))] }
	fmt.Printf("vertices:   %d\n", g.N)
	fmt.Printf("edges:      %d\n", g.NumEdges())
	fmt.Printf("weighted:   %v\n", g.Weighted())
	fmt.Printf("avg degree: %.2f\n", g.AvgDegree())
	fmt.Printf("in-degree:  max=%d p50=%d p90=%d p99=%d\n",
		sorted[0], pct(0.5), pct(0.1), pct(0.01))
	fmt.Printf("footprint:  %.1fMB (CSR + property)\n", float64(g.FootprintBytes())/(1<<20))
	fmt.Printf("hot prefix: first 10%% of IDs receive %.1f%% of property accesses\n",
		100*reorder.HotPrefixCoverage(g, 0.1))
	return nil
}

func cmdReorder(args []string) error {
	fs := flag.NewFlagSet("reorder", flag.ExitOnError)
	method := fs.String("method", "dbg", "dbg, sort, or rand")
	out := fs.String("o", "", "output file")
	_ = fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		return fmt.Errorf("reorder: -o OUT and one input file are required")
	}
	g, err := readGraph(fs.Arg(0))
	if err != nil {
		return err
	}
	var m reorder.Method
	switch *method {
	case "dbg":
		m = reorder.DBG
	case "sort":
		m = reorder.FullSort
	case "rand":
		m = reorder.Random
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	ng, cost := reorder.Apply(g, m, 1)
	fmt.Printf("reordered with %s: %d vertex + %d edge traversal elements\n",
		m, cost.VertexTraversals, cost.EdgeTraversals)
	fmt.Printf("hot-10%% coverage: %.1f%% -> %.1f%%\n",
		100*reorder.HotPrefixCoverage(g, 0.1), 100*reorder.HotPrefixCoverage(ng, 0.1))
	return writeGraph(*out, ng)
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := graph.Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
