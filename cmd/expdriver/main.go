// Command expdriver reproduces the paper's evaluation: it runs every
// experiment (or a selected subset) and writes the tables as text to
// stdout and as markdown to a results file.
//
// Usage:
//
//	expdriver [-scale full|bench|test] [-exp fig1,fig10,...] [-out results.md] [-v]
//
// A full-scale run of all experiments takes tens of minutes on one core;
// -scale bench completes in a few minutes at reduced fidelity.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"graphmem/internal/exp"
	"graphmem/internal/gen"
)

func main() {
	scale := flag.String("scale", "full", "dataset scale: full, bench, or test")
	expIDs := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	outPath := flag.String("out", "", "write markdown tables to this file")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	verbose := flag.Bool("v", false, "log each simulation run")
	listOnly := flag.Bool("list", false, "list experiments and exit")
	priters := flag.Int("pr-iters", 3, "PageRank iteration cap")
	flag.Parse()

	if *listOnly {
		for _, e := range exp.Registry {
			fmt.Printf("%-10s %-8s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var sc gen.Scale
	switch *scale {
	case "full":
		sc = gen.ScaleFull
	case "bench":
		sc = gen.ScaleBench
	case "test":
		sc = gen.ScaleTest
	default:
		fmt.Fprintf(os.Stderr, "expdriver: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	s := exp.NewSuite(sc, log)
	s.PRMaxIters = *priters

	var ids []string
	if *expIDs != "" {
		ids = strings.Split(*expIDs, ",")
	}

	start := time.Now()
	results, err := exp.RunAndRender(s, ids, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted %d experiments (%d distinct simulation runs) in %s\n",
		len(results), s.CachedRunCount(), time.Since(start).Round(time.Second))

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			os.Exit(1)
		}
		for id, tables := range results {
			for i, t := range tables {
				name := fmt.Sprintf("%s/%s_%d.csv", *csvDir, id, i)
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "expdriver: writing %s: %v\n", name, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("CSV tables written to %s/\n", *csvDir)
	}

	if *outPath != "" {
		var b strings.Builder
		fmt.Fprintf(&b, "# graphmem experiment results\n\nscale=%s, runs=%d, generated in %s\n\n",
			*scale, s.CachedRunCount(), time.Since(start).Round(time.Second))
		for _, e := range exp.Registry {
			tables, ok := results[e.ID]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "## %s (%s): %s\n\n", e.ID, e.Paper, e.Desc)
			for _, t := range tables {
				b.WriteString(t.Markdown())
				b.WriteString("\n")
			}
		}
		if err := os.WriteFile(*outPath, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("markdown written to %s\n", *outPath)
	}
}
