// Command expdriver reproduces the paper's evaluation: it runs every
// experiment (or a selected subset) and writes the tables as text to
// stdout and as markdown to a results file.
//
// Usage:
//
//	expdriver [-scale full|bench|test] [-exp fig1,fig10,...] [-j N] [-shards N]
//	          [-ckpt-dir DIR] [-out results.md] [-v]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -j runs the campaign's simulation cells on N workers (0 = all CPUs).
// Parallelism changes wall-clock time only: stdout, the markdown file,
// and the CSV tables are byte-identical for every worker count, because
// each cell is a pure function of its configuration and rendering is
// sequential in registry order (see DESIGN.md §5). Timing and progress
// go to stderr, keeping stdout comparable across runs.
//
// -shards sets how many worker goroutines drive each sharded cell's
// shards (0 = GOMAXPROCS), composing with -j: a campaign can run cells
// in parallel while each sharded cell also runs its shards in
// parallel. Like -j it is an execution knob routed through
// GRAPHMEM_SHARD_WORKERS, never part of any cell's configuration —
// which shard counts are *modeled* is fixed by the experiments
// (core.RunSpec.Shards) — so output stays byte-identical for every
// -shards value (DESIGN.md §5c).
//
// -ckpt-dir backs the campaign's checkpoint cache with a persistent
// content-addressed store in that directory (DESIGN.md §5e): load
// phases staged by earlier invocations are reloaded from disk instead
// of replayed, and fresh stagings are saved for later ones. Like -j and
// -shards it is an execution knob — forks from a loaded machine are
// byte-identical to forks from a staged one, which CI's reload gate
// diffs — so output is unchanged whether the store is cold, warm, or
// absent.
//
// A full-scale run of all experiments takes tens of minutes on one core;
// -scale bench completes in a few minutes at reduced fidelity.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"graphmem/internal/exp"
	"graphmem/internal/gen"
)

func main() {
	scale := flag.String("scale", "full", "dataset scale: full, bench, or test")
	expIDs := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	outPath := flag.String("out", "", "write markdown tables to this file")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	workers := flag.Int("j", 1, "parallel simulation workers (0 = all CPUs)")
	shardWorkers := flag.Int("shards", 0, "worker goroutines per sharded cell (0 = all CPUs); execution-only, output is identical for every value")
	ckptDir := flag.String("ckpt-dir", "", "persistent checkpoint store directory (created if missing); execution-only, output is identical with a cold, warm, or absent store")
	verbose := flag.Bool("v", false, "log per-worker progress for each simulation cell")
	listOnly := flag.Bool("list", false, "list experiments and exit")
	footprint := flag.Bool("footprint", false, "stage the ext-fullscale cell at the chosen scale, print the simulator footprint report, and exit")
	priters := flag.Int("pr-iters", 3, "PageRank iteration cap")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			}
		}()
	}

	if *listOnly {
		for _, e := range exp.Registry {
			caps := e.Caps
			if caps == "" {
				caps = "-"
			}
			fmt.Printf("%-14s %-13s %-40s %s\n", e.ID, e.Paper, caps, e.Desc)
		}
		return
	}

	var sc gen.Scale
	switch *scale {
	case "full":
		sc = gen.ScaleFull
	case "bench":
		sc = gen.ScaleBench
	case "test":
		sc = gen.ScaleTest
	default:
		fmt.Fprintf(os.Stderr, "expdriver: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	if *shardWorkers > 0 {
		// core.shardWorkers reads this per run; setting it here keeps
		// the knob out of every RunSpec, which is what makes output
		// independent of it.
		os.Setenv("GRAPHMEM_SHARD_WORKERS", strconv.Itoa(*shardWorkers))
	}

	var log io.Writer
	opt := exp.CampaignOptions{Workers: *workers}
	if *verbose {
		log = os.Stderr
		opt.Progress = func(worker, done, total int, cell string) {
			fmt.Fprintf(os.Stderr, "[w%d] %d/%d %s\n", worker, done, total, cell)
		}
	}
	s := exp.NewSuite(sc, log)
	s.PRMaxIters = *priters
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			os.Exit(1)
		}
		s.CkptDir = *ckptDir
	}

	if *footprint {
		fp, ok := s.FullscaleFootprint()
		if !ok {
			fmt.Fprintln(os.Stderr, "expdriver: no resident machine to introspect (GRAPHMEM_NO_SNAPSHOT set?)")
			os.Exit(1)
		}
		fmt.Print(fp.Table().String())
		fmt.Printf("\nfootprint_total_bytes=%d legacy_bytes=%d reduction=%.3f bytes_per_sim_gb=%.0f\n",
			fp.TotalBytes(), fp.LegacyBytes(), fp.Reduction(), fp.BytesPerSimGB())
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(os.Stderr, "host heap: %.2f MiB in use, %.2f MiB from OS\n",
			float64(ms.HeapInuse)/(1<<20), float64(ms.Sys)/(1<<20))
		return
	}

	var ids []string
	if *expIDs != "" {
		ids = strings.Split(*expIDs, ",")
	}

	start := time.Now()
	results, err := exp.RunCampaign(s, ids, opt, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\ncompleted %d experiments (%d distinct simulation runs, %d workers) in %s\n",
		len(results), s.CachedRunCount(), *workers, time.Since(start).Round(time.Second))

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			os.Exit(1)
		}
		for _, e := range exp.Registry {
			tables, ok := results[e.ID]
			if !ok {
				continue
			}
			for i, t := range tables {
				name := fmt.Sprintf("%s/%s_%d.csv", *csvDir, e.ID, i)
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "expdriver: writing %s: %v\n", name, err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "CSV tables written to %s/\n", *csvDir)
	}

	if *outPath != "" {
		var b strings.Builder
		fmt.Fprintf(&b, "# graphmem experiment results\n\nscale=%s, runs=%d\n\n",
			*scale, s.CachedRunCount())
		for _, e := range exp.Registry {
			tables, ok := results[e.ID]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "## %s (%s): %s\n\n", e.ID, e.Paper, e.Desc)
			for _, t := range tables {
				b.WriteString(t.Markdown())
				b.WriteString("\n")
			}
		}
		if err := os.WriteFile(*outPath, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "markdown written to %s\n", *outPath)
	}
}
