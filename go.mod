module graphmem

go 1.22
