// Package graphmem's root benchmark suite regenerates every table and
// figure of the paper's evaluation as a testing.B benchmark. Each
// Benchmark runs the corresponding experiment at bench scale and reports
// its headline number via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. Full-fidelity (paper-geometry) tables
// come from `go run ./cmd/expdriver -scale full`; the benchmarks here
// trade graph size for wall-clock so the suite completes in minutes.
package graphmem_test

import (
	"strconv"
	"strings"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/exp"
	"graphmem/internal/gen"
	"graphmem/internal/oskernel"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
	"graphmem/internal/tlb"
)

// benchSuite builds a fresh suite per iteration so the benchmark
// measures the full experiment, not the memoization cache.
func runExperiment(b *testing.B, run func(*exp.Suite) []*stats.Table, metric func([]*stats.Table) (string, float64)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(gen.ScaleBench, nil)
		s.PRMaxIters = 2
		tables := run(s)
		if metric != nil {
			name, v := metric(tables)
			b.ReportMetric(v, name)
		}
	}
}

// geomeanColumn extracts column idx of the first table and returns its
// geometric mean (cells must be numeric).
func geomeanColumn(tables []*stats.Table, idx int) float64 {
	var xs []float64
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[idx], "%"), 64)
		if err != nil {
			continue
		}
		xs = append(xs, v)
	}
	return stats.Geomean(xs)
}

func BenchmarkTable1_SystemParameters(b *testing.B) {
	runExperiment(b, (*exp.Suite).Table1, nil)
}

func BenchmarkTable2_Datasets(b *testing.B) {
	runExperiment(b, (*exp.Suite).Table2, nil)
}

func BenchmarkFig1_THPSpeedup(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig1, func(t []*stats.Table) (string, float64) {
		return "thp-fresh-speedup", geomeanColumn(t, 1)
	})
}

func BenchmarkFig2_TranslationOverhead(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig2, func(t []*stats.Table) (string, float64) {
		return "4k-translation-pct", geomeanColumn(t, 1)
	})
}

func BenchmarkFig3_TLBMissRates(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig3, func(t []*stats.Table) (string, float64) {
		return "4k-dtlb-miss-pct", geomeanColumn(t, 1)
	})
}

func BenchmarkFig4_AccessBreakdown(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig4, nil)
}

func BenchmarkFig5_PerStructureTHP(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig5, func(t []*stats.Table) (string, float64) {
		return "prop-only-speedup", geomeanColumn(t, 3)
	})
}

func BenchmarkFig7_PressureAllocOrder(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig7, func(t []*stats.Table) (string, float64) {
		return "optimized-order-speedup", geomeanColumn(t, 3)
	})
}

func BenchmarkFig7b_PressureSweep(b *testing.B) {
	runExperiment(b, (*exp.Suite).PressureSweep, func(t []*stats.Table) (string, float64) {
		// Slowdown at the oversubscribed point (first numeric column
		// of the 4k sweep): the swap cliff.
		return "oversubscribed-4k-speedup", geomeanColumn(t, 1)
	})
}

func BenchmarkFig8_Fragmentation(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig8, func(t []*stats.Table) (string, float64) {
		return "optimized-order-speedup", geomeanColumn(t, 3)
	})
}

func BenchmarkFig9_FragSweep(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig9, nil)
}

func BenchmarkFig10_SelectiveTHP(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig10, func(t []*stats.Table) (string, float64) {
		return "dbg-sel100-speedup", geomeanColumn(t, 5)
	})
}

func BenchmarkFig11_SelectivitySweep(b *testing.B) {
	runExperiment(b, (*exp.Suite).Fig11, nil)
}

func BenchmarkT_DBGOverhead(b *testing.B) {
	runExperiment(b, (*exp.Suite).DBGOverhead, func(t []*stats.Table) (string, float64) {
		return "preproc-pct", geomeanColumn(t, 1)
	})
}

func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, (*exp.Suite).Headline, func(t []*stats.Table) (string, float64) {
		return "sel-vs-4k-speedup", geomeanColumn(t, 1)
	})
}

func BenchmarkPageCacheInterference(b *testing.B) {
	runExperiment(b, (*exp.Suite).PageCache, nil)
}

// --- microbenchmarks: the simulator's own hot paths -------------------

// BenchmarkAccessHot measures the simulator's per-access overhead when
// everything hits (the lower bound of simulation cost).
func BenchmarkAccessHot(b *testing.B) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	r, err := core.Run(core.RunSpec{
		Graph: g, App: analytics.BFS, Reorder: reorder.Identity,
		Order: analytics.Natural, Policy: core.Base4K(), Env: core.FreshBoot(),
	})
	if err != nil {
		b.Fatal(err)
	}
	accesses := r.Init.Accesses + r.Kernel.Accesses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2, err := core.Run(core.RunSpec{
			Graph: g, App: analytics.BFS, Reorder: reorder.Identity,
			Order: analytics.Natural, Policy: core.Base4K(), Env: core.FreshBoot(),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = r2
	}
	b.ReportMetric(float64(accesses), "sim-accesses/op")
}

// BenchmarkBFSSimThroughput reports simulated-edges per wall-second.
func BenchmarkBFSSimThroughput(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Run(core.RunSpec{
			Graph: g, App: analytics.BFS, Reorder: reorder.Identity,
			Order: analytics.Natural, Policy: core.THPAlways(), Env: core.FreshBoot(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/op")
}

// BenchmarkDBGReorder measures preprocessing throughput.
func BenchmarkDBGReorder(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reorder.Apply(g, reorder.DBG, 1)
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/op")
}

// --- extension & ablation benchmarks ----------------------------------

func BenchmarkExt_Baselines(b *testing.B) {
	runExperiment(b, (*exp.Suite).Baselines, func(t []*stats.Table) (string, float64) {
		return "hawkeye-speedup", geomeanColumn(t, 3)
	})
}

func BenchmarkExt_AutoSelective(b *testing.B) {
	runExperiment(b, (*exp.Suite).AutoSelective, func(t []*stats.Table) (string, float64) {
		return "auto-orig-speedup", geomeanColumn(t, 2)
	})
}

func BenchmarkExt_ConnectedComponents(b *testing.B) {
	runExperiment(b, (*exp.Suite).CCWorkload, nil)
}

// BenchmarkAblation_Khugepaged quantifies what background promotion
// contributes on top of fault-time allocation under fragmentation.
func BenchmarkAblation_Khugepaged(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	for i := 0; i < b.N; i++ {
		for _, enabled := range []bool{false, true} {
			p := core.THPAlways()
			p.DisableKhugepaged = !enabled
			r, err := core.Run(core.RunSpec{
				Graph: g, App: analytics.BFS, Reorder: reorder.Identity,
				Order: analytics.Natural, Policy: p,
				Env: core.Fragmented(4<<20, 0.5),
			})
			if err != nil {
				b.Fatal(err)
			}
			name := "cycles-khugepaged-off"
			if enabled {
				name = "cycles-khugepaged-on"
			}
			b.ReportMetric(float64(r.TotalCycles), name)
		}
	}
}

// BenchmarkAblation_DefragModes compares fault-time defragmentation
// effort settings for madvise'd memory under total fragmentation by
// movable pages.
func BenchmarkAblation_DefragModes(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	for i := 0; i < b.N; i++ {
		for _, mode := range []oskernel.DefragMode{
			oskernel.DefragNever, oskernel.DefragMadvise, oskernel.DefragAlways,
		} {
			p := core.SelectiveTHP(1.0)
			p.Defrag = mode
			r, err := core.Run(core.RunSpec{
				Graph: g, App: analytics.BFS, Reorder: reorder.DBG,
				Order: analytics.Natural, Policy: p,
				Env: core.Pressured(2 << 20),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.PropHugeBytes)/(1<<20), "prop-huge-MB-defrag-"+mode.String())
		}
	}
}

// BenchmarkAblation_AgedFraction sweeps the ambient non-movable poison
// density that calibrates the paper's pressure phases (DESIGN.md §1).
func BenchmarkAblation_AgedFraction(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{0, 0.125, 0.25, 0.5} {
			env := core.Environment{AgedFraction: f, PressureDelta: 4 << 20}
			r, err := core.Run(core.RunSpec{
				Graph: g, App: analytics.BFS, Reorder: reorder.Identity,
				Order: analytics.Natural, Policy: core.THPAlways(), Env: env,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*r.HugeShareOfFootprint(),
				"huge-share-pct-aged-"+strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
}

// BenchmarkAblation_2MTLBThrash demonstrates the paper's 2MB-TLB
// thrashing effect directly: with a TLB scaled so huge translations
// outnumber 2M-TLB entries, system-wide THP loses part of its win and
// property-only selective use keeps it.
func BenchmarkAblation_2MTLBThrash(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	dbg, _ := reorder.Apply(g, reorder.DBG, 1)
	small := tlb.Scaled(tlb.Haswell(), 32)
	for i := 0; i < b.N; i++ {
		run := func(p core.Policy) uint64 {
			r, err := core.Run(core.RunSpec{
				Graph: dbg, App: analytics.BFS, Reorder: reorder.Identity,
				Order: analytics.Natural, Policy: p, Env: core.FreshBoot(),
				TLB: small,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.TotalCycles
		}
		all := run(core.THPAlways())
		sel := run(core.SelectiveTHP(0.4))
		b.ReportMetric(float64(all)/float64(sel), "selective-vs-systemwide")
	}
}

// BenchmarkExt_HugetlbGuarantee compares opportunistic selective THP
// against a boot-time hugetlbfs reservation under worst-case
// fragmentation (§2.3's explicit-vs-transparent tradeoff).
func BenchmarkExt_HugetlbGuarantee(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	dbg, _ := reorder.Apply(g, reorder.DBG, 1)
	for i := 0; i < b.N; i++ {
		env := core.Fragmented(2<<20, 1.0)
		run := func(p core.Policy) uint64 {
			r, err := core.Run(core.RunSpec{
				Graph: dbg, App: analytics.BFS, Reorder: reorder.Identity,
				Order: analytics.Natural, Policy: p, Env: env,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.TotalCycles
		}
		thp := run(core.SelectiveTHP(0.5))
		htlb := run(core.HugetlbSelective(0.5))
		b.ReportMetric(float64(thp)/float64(htlb), "hugetlb-vs-thp-speedup")
	}
}

// BenchmarkAblation_SimPageTables compares the constant-cost walk model
// against full page-table simulation (walk entries fetched through the
// cache hierarchy, paging structures resident in simulated memory).
func BenchmarkAblation_SimPageTables(b *testing.B) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	for i := 0; i < b.N; i++ {
		for _, sim := range []bool{false, true} {
			r, err := core.Run(core.RunSpec{
				Graph: g, App: analytics.BFS, Reorder: reorder.Identity,
				Order: analytics.Natural, Policy: core.Base4K(), Env: core.FreshBoot(),
				TLB:                tlb.Scaled(tlb.Haswell(), 8),
				SimulatePageTables: sim,
			})
			if err != nil {
				b.Fatal(err)
			}
			name := "cycles-const-walks"
			if sim {
				name = "cycles-simulated-walks"
			}
			b.ReportMetric(float64(r.KernelCycles), name)
		}
	}
}
